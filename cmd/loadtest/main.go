// Command loadtest drives a flowcon-worker's /v1 submit surface with
// concurrent submitters and reports the submit-latency distribution —
// the CI loadtest-smoke gate (scripts/loadtest-smoke.sh boots a worker,
// runs this against it, and fails on any error or a p99 over budget).
//
// Usage:
//
//	loadtest -worker http://localhost:7070 [-submitters 8] [-jobs 25]
//	         [-model "MNIST (Pytorch)"] [-p99-budget 500ms]
//	         [-bench-out BENCH_sim.json] [-cleanup]
//
// With -bench-out the latency fields are recorded additively on the
// newest BENCH_sim.json entry (schema stays 2; see docs/BENCH_SCHEMA.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/agent"
	"repro/internal/benchfile"
)

func main() {
	worker := flag.String("worker", "http://localhost:7070", "worker agent base URL")
	submitters := flag.Int("submitters", 8, "concurrent submitter goroutines")
	jobs := flag.Int("jobs", 25, "submissions per submitter")
	model := flag.String("model", "MNIST (Pytorch)", "catalog model key to submit")
	budget := flag.Duration("p99-budget", 0, "fail when p99 submit latency exceeds this (0 = no gate)")
	benchOut := flag.String("bench-out", "", "record the result on the newest entry of this BENCH_sim.json (skipped when empty)")
	cleanup := flag.Bool("cleanup", true, "cancel submitted jobs afterwards")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run budget")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c := agent.NewClient(*worker, nil)
	if _, err := c.PingRetry(ctx, 10); err != nil {
		log.Fatalf("loadtest: worker unreachable: %v", err)
	}

	rep := agent.RunLoadTest(ctx, c, agent.LoadOptions{
		Submitters:       *submitters,
		JobsPerSubmitter: *jobs,
		Model:            *model,
		Cleanup:          *cleanup,
	})
	fmt.Printf("loadtest: %s\n", rep)

	if *benchOut != "" {
		if err := record(*benchOut, *submitters, rep); err != nil {
			log.Printf("loadtest: recording to %s: %v", *benchOut, err)
		} else {
			log.Printf("loadtest: recorded on newest entry of %s", *benchOut)
		}
	}

	if rep.Errors > 0 {
		log.Fatalf("loadtest: %d submissions failed (first: %v)", rep.Errors, rep.FirstError)
	}
	if *budget > 0 && rep.P99 > *budget {
		log.Fatalf("loadtest: p99 %s exceeds budget %s", rep.P99, *budget)
	}
	os.Exit(0)
}

// record attaches the latency fields to the newest BENCH_sim.json entry.
func record(path string, submitters int, rep agent.LoadReport) error {
	doc, err := benchfile.Load(path)
	if err != nil {
		return err
	}
	if len(doc.Entries) == 0 {
		return fmt.Errorf("no entries to attach to")
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	doc.Entries[len(doc.Entries)-1].Loadtest = &benchfile.LoadtestResult{
		Submitters: submitters,
		Jobs:       rep.Submitted + rep.Errors,
		Errors:     rep.Errors,
		P50Ms:      ms(rep.P50),
		P95Ms:      ms(rep.P95),
		P99Ms:      ms(rep.P99),
		MaxMs:      ms(rep.Max),
		WallSec:    rep.Elapsed.Seconds(),
	}
	return doc.Write(path)
}
