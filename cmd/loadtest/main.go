// Command loadtest drives a flowcon-worker's /v1 submit surface with
// concurrent submitters and reports the per-phase latency breakdown
// (connect / submit / status-poll) — the CI loadtest-smoke gate
// (scripts/loadtest-smoke.sh boots a worker, runs this against it, and
// fails on any error or a p99 submit latency over budget).
//
// Usage:
//
//	loadtest -worker http://localhost:7070 [-submitters 8] [-jobs 25]
//	         [-model "MNIST (Pytorch)"] [-p99-budget 500ms]
//	         [-bench-out BENCH_sim.json] [-assert-metrics] [-cleanup]
//	         [-log-level info] [-log-format text]
//
// With -bench-out the latency fields (including the phase split) are
// recorded additively on the newest BENCH_sim.json entry (schema stays
// 2; see docs/BENCH_SCHEMA.md). With -assert-metrics the run scrapes the
// worker's /v1/metrics afterwards and fails unless the agent-side submit
// counters are consistent with what this client observed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/benchfile"
	"repro/internal/telemetry"
)

func main() {
	worker := flag.String("worker", "http://localhost:7070", "worker agent base URL")
	submitters := flag.Int("submitters", 8, "concurrent submitter goroutines")
	jobs := flag.Int("jobs", 25, "submissions per submitter")
	model := flag.String("model", "MNIST (Pytorch)", "catalog model key to submit")
	budget := flag.Duration("p99-budget", 0, "fail when p99 submit latency exceeds this (0 = no gate)")
	benchOut := flag.String("bench-out", "", "record the result on the newest entry of this BENCH_sim.json (skipped when empty)")
	assertMetrics := flag.Bool("assert-metrics", false,
		"scrape /v1/metrics after the run and fail unless the worker's submit counters match this client's view")
	cleanup := flag.Bool("cleanup", true, "cancel submitted jobs afterwards")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run budget")
	logLevel, logFormat := telemetry.LogFlags(flag.CommandLine)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c := agent.NewClient(*worker, nil)
	if _, err := c.PingRetry(ctx, 10); err != nil {
		logger.Error("worker unreachable", "worker", *worker, "err", err)
		os.Exit(1)
	}

	rep := agent.RunLoadTest(ctx, c, agent.LoadOptions{
		Submitters:       *submitters,
		JobsPerSubmitter: *jobs,
		Model:            *model,
		Cleanup:          *cleanup,
	})
	fmt.Printf("loadtest: %s\n", rep)
	fmt.Printf("  connect:     %s\n", rep.Phases.Connect)
	fmt.Printf("  submit:      %s\n", rep.Phases.Submit)
	fmt.Printf("  status-poll: %s\n", rep.Phases.StatusPoll)

	if *benchOut != "" {
		if err := record(*benchOut, *submitters, rep); err != nil {
			logger.Warn("recording failed", "path", *benchOut, "err", err)
		} else {
			logger.Info("recorded on newest entry", "path", *benchOut)
		}
	}

	if rep.Errors > 0 {
		logger.Error("submissions failed", "errors", rep.Errors, "first", rep.FirstError)
		os.Exit(1)
	}
	if *budget > 0 && rep.P99 > *budget {
		logger.Error("p99 over budget", "p99", rep.P99, "budget", *budget)
		os.Exit(1)
	}
	if *assertMetrics {
		if err := checkMetrics(ctx, c, rep); err != nil {
			logger.Error("metrics assertion failed", "err", err)
			os.Exit(1)
		}
		logger.Info("worker metrics consistent with client view", "submits", rep.Submitted)
	}
	os.Exit(0)
}

// checkMetrics scrapes the worker's /v1/metrics and cross-checks the
// agent-side counters against what this client measured: the worker must
// have counted at least our accepted submissions (at least — the worker
// may have served other clients or earlier runs) and the latency summary
// must have observed every one of them.
func checkMetrics(ctx context.Context, c *agent.Client, rep agent.LoadReport) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("scraping /v1/metrics: %w", err)
	}
	submits, err := sampleValue(text, "flowcon_agent_submits_total")
	if err != nil {
		return err
	}
	if submits <= 0 || submits < float64(rep.Submitted) {
		return fmt.Errorf("flowcon_agent_submits_total = %g, want >= %d accepted submissions",
			submits, rep.Submitted)
	}
	latCount, err := sampleValue(text, "flowcon_agent_submit_latency_seconds_count")
	if err != nil {
		return err
	}
	if latCount != submits {
		return fmt.Errorf("latency summary count %g != submits_total %g", latCount, submits)
	}
	queued, err := sampleValue(text, "flowcon_agent_submits_queued_total")
	if err != nil {
		return err
	}
	if queued < float64(rep.Queued) {
		return fmt.Errorf("flowcon_agent_submits_queued_total = %g, want >= %d", queued, rep.Queued)
	}
	return nil
}

// sampleValue extracts one sample's value from a Prometheus text
// exposition by its exact name (including any label set).
func sampleValue(text, sample string) (float64, error) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return 0, fmt.Errorf("parsing %s value %q: %w", sample, rest, err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("sample %s missing from scrape", sample)
}

// record attaches the latency fields, phase split included, to the
// newest BENCH_sim.json entry.
func record(path string, submitters int, rep agent.LoadReport) error {
	doc, err := benchfile.Load(path)
	if err != nil {
		return err
	}
	if len(doc.Entries) == 0 {
		return fmt.Errorf("no entries to attach to")
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	phase := func(p agent.PhaseStats) benchfile.LoadtestPhase {
		return benchfile.LoadtestPhase{
			Count: p.Count,
			P50Ms: ms(p.P50),
			P95Ms: ms(p.P95),
			P99Ms: ms(p.P99),
			MaxMs: ms(p.Max),
		}
	}
	doc.Entries[len(doc.Entries)-1].Loadtest = &benchfile.LoadtestResult{
		Submitters: submitters,
		Jobs:       rep.Submitted + rep.Errors,
		Errors:     rep.Errors,
		P50Ms:      ms(rep.P50),
		P95Ms:      ms(rep.P95),
		P99Ms:      ms(rep.P99),
		MaxMs:      ms(rep.Max),
		WallSec:    rep.Elapsed.Seconds(),
		Phases: &benchfile.LoadtestPhases{
			Connect:    phase(rep.Phases.Connect),
			Submit:     phase(rep.Phases.Submit),
			StatusPoll: phase(rep.Phases.StatusPoll),
		},
	}
	return doc.Write(path)
}
