package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/flowcon"
	"repro/internal/plot"
	"repro/internal/sched"
	"repro/internal/workload"
)

// runAblations prints the design-choice ablation table over the ten-job
// workload — the same studies the benchmark harness reports as metrics,
// in human-readable form.
func runAblations() {
	tenJobs := func(newPolicy func(flowcon.Tracer) sched.Policy) experiment.Spec {
		return experiment.Spec{
			Name:        "ablation",
			NewPolicy:   newPolicy,
			Submissions: workload.RandomN(10, experiment.SeedRandomTen),
		}
	}

	type row struct {
		name, finding string
	}
	var rows []row

	base := experiment.Run(tenJobs(experiment.FlowConPolicy(0.10, 20)))
	na := experiment.Run(tenJobs(experiment.NAPolicy(20)))
	rows = append(rows, row{"FlowCon 10%,20 (baseline)",
		fmt.Sprintf("makespan %.1fs, %d algorithm runs, %d updates", base.Makespan, base.AlgorithmRuns, base.LimitUpdates)})
	rows = append(rows, row{"NA",
		fmt.Sprintf("makespan %.1fs (FlowCon %.1f%% better)", na.Makespan, (na.Makespan-base.Makespan)/na.Makespan*100)})

	noBackoff := experiment.Run(tenJobs(experiment.FlowConPolicyNoBackoff(0.10, 20)))
	rows = append(rows, row{"no exponential back-off",
		fmt.Sprintf("%d runs vs %d — back-off saves %.0f%% of runs at equal makespan",
			noBackoff.AlgorithmRuns, base.AlgorithmRuns,
			100*(1-float64(base.AlgorithmRuns)/float64(noBackoff.AlgorithmRuns)))})

	noListeners := experiment.Run(tenJobs(experiment.FlowConPolicyNoListeners(0.10, 20)))
	rows = append(rows, row{"no Algorithm 2 listeners",
		fmt.Sprintf("makespan %.1fs; arrivals wait up to itval for resources", noListeners.Makespan)})

	for _, beta := range []float64{1, 4} {
		res := experiment.Run(tenJobs(experiment.FlowConPolicyBeta(0.10, 20, beta)))
		rows = append(rows, row{fmt.Sprintf("CL floor beta=%g", beta),
			fmt.Sprintf("makespan %.1fs", res.Makespan)})
	}

	slaq := experiment.Run(tenJobs(experiment.SLAQPolicy(20)))
	rows = append(rows, row{"SLAQ-like baseline",
		fmt.Sprintf("makespan %.1fs", slaq.Makespan)})
	ts := experiment.Run(tenJobs(experiment.TimeSlicePolicy(2, 60)))
	rows = append(rows, row{"Gandiva-style time slicing",
		fmt.Sprintf("makespan %.1fs", ts.Makespan)})

	idealSpec := tenJobs(experiment.FlowConPolicy(0.10, 20))
	idealSpec.ContentionOverhead = -1
	idealFC := experiment.Run(idealSpec)
	idealSpec = tenJobs(experiment.NAPolicy(20))
	idealSpec.ContentionOverhead = -1
	idealNA := experiment.Run(idealSpec)
	rows = append(rows, row{"ideal loss-free node",
		fmt.Sprintf("FlowCon gain %.2f%% — makespan edge needs real contention",
			(idealNA.Makespan-idealFC.Makespan)/idealNA.Makespan*100)})

	crashSpec := tenJobs(experiment.FlowConPolicy(0.10, 20))
	crashSpec.Workers = 2
	crashSpec.Failures = map[int]float64{0: 300}
	crashed := experiment.Run(crashSpec)
	crashSpec = tenJobs(experiment.FlowConPolicy(0.10, 20))
	crashSpec.Workers = 2
	crashSpec.Failures = map[int]float64{0: 300}
	crashSpec.CheckpointWork = 30
	resumed := experiment.Run(crashSpec)
	rows = append(rows, row{"worker crash at t=300 (2 workers)",
		fmt.Sprintf("scratch restart %.1fs vs checkpointed %.1fs (%d jobs rescheduled)",
			crashed.Makespan, resumed.Makespan, crashed.Requeued)})

	binpackSpec := tenJobs(experiment.FlowConPolicy(0.10, 20))
	binpackSpec.Workers = 2
	binpackSpec.Placement = cluster.BinPackMemory
	binpack := experiment.Run(binpackSpec)
	spreadSpec := tenJobs(experiment.FlowConPolicy(0.10, 20))
	spreadSpec.Workers = 2
	spread := experiment.Run(spreadSpec)
	rows = append(rows, row{"placement (2 workers)",
		fmt.Sprintf("spread %.1fs vs memory binpack %.1fs", spread.Makespan, binpack.Makespan)})

	fmt.Println("Ablations on the ten-job random workload (seed", experiment.SeedRandomTen, ")")
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{r.name, r.finding}
	}
	plot.Table(os.Stdout, []string{"variant", "finding"}, cells)
}
