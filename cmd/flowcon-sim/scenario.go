package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/plot"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// runScenarioList prints the whole registry, heavy scenarios included.
func runScenarioList() {
	experiment.ReportScenarioList(os.Stdout, experiment.AllScenarios())
}

// resolveScenarios expands a comma-separated -scenario value into
// scenario definitions, exiting on unknown names. "all" is the sweep
// set: every registered scenario except the heavy megacluster family,
// which runs only when named explicitly.
func resolveScenarios(arg string) []experiment.Scenario {
	if strings.EqualFold(arg, "all") {
		return experiment.Scenarios()
	}
	var scens []experiment.Scenario
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, ok := experiment.ScenarioByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "flowcon-sim: unknown scenario %q (try -scenario-list)\n", name)
			os.Exit(2)
		}
		scens = append(scens, s)
	}
	if len(scens) == 0 {
		fmt.Fprintln(os.Stderr, "flowcon-sim: -scenario needs at least one name")
		os.Exit(2)
	}
	return scens
}

// applyMigrationFlags folds -rebalance and -migration-cost into the
// selected scenario copies: the cost model (when set) reprices each
// scenario's drains and its declarative rebalancer (including built-ins
// like hotspot-rebalance), and -rebalance attaches the GE-aware
// rebalancer to every scenario that does not already define a cluster
// policy. Only an opaque custom Scenario.ClusterPolicy is beyond the
// flags' reach.
func applyMigrationFlags(scens []experiment.Scenario, rebalance bool, costSec float64) {
	cost := cluster.MigrationCost{}
	if costSec > 0 {
		cost = cluster.DefaultMigrationCost()
		cost.FreezeSec = costSec / 2
		cost.ThawSec = costSec / 2
	}
	for i := range scens {
		if costSec > 0 {
			scens[i].MigrationCost = cost
			if scens[i].Rebalance != nil {
				// Copy before repricing — the registry owns the original.
				cfg := *scens[i].Rebalance
				cfg.Cost = cost
				scens[i].Rebalance = &cfg
			}
		}
		if rebalance && scens[i].ClusterPolicy == nil && scens[i].Rebalance == nil {
			scens[i].Rebalance = &migrate.Config{Cost: cost}
			scens[i].ClusterPolicyName = "GE-Rebalancer"
		}
	}
}

// applyShardSim folds -shard-sim into the selected scenario copies
// (0 = auto, resolved by the runner to GOMAXPROCS).
func applyShardSim(scens []experiment.Scenario, shards int) {
	if shards == 1 {
		return // serial engine, the default
	}
	if shards == 0 {
		shards = -1 // Spec.SimShards auto
	}
	for i := range scens {
		scens[i].SimShards = shards
	}
}

// applyTraceLevel folds -trace-level into the selected scenario copies.
// The summary default is the zero value, so only dense needs writing.
func applyTraceLevel(scens []experiment.Scenario, tier metrics.Tier) {
	if tier == metrics.TierSummary {
		return
	}
	for i := range scens {
		scens[i].TraceLevel = tier
	}
}

// applyTracer gives every selected scenario copy a fresh lifecycle
// tracer per run (specs execute concurrently in sweeps — rings must not
// be shared). Tracing is a pure observer; the summary table is
// byte-identical with or without it.
func applyTracer(scens []experiment.Scenario) {
	for i := range scens {
		scens[i].NewTracer = func() *telemetry.Tracer { return telemetry.NewTracer(0) }
	}
}

// writeTraceOut exports every run's lifecycle spans into one JSONL file,
// runs in spec order, each span labeled with its run name.
func writeTraceOut(path string, outs []experiment.ScenarioOutcome) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	spans := 0
	for _, o := range outs {
		for _, res := range o.Results() {
			if res.Tracer == nil {
				continue
			}
			if err := res.Tracer.WriteJSONL(f, res.Name); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
				os.Exit(1)
			}
			spans += res.Tracer.Len()
			if d := res.Tracer.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "flowcon-sim: %s: ring wrapped, oldest %d span(s) dropped\n", res.Name, d)
			}
		}
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	// Stderr, not stdout: -trace-out must leave the determinism-gated
	// scenario output untouched (make determinism compares it).
	fmt.Fprintf(os.Stderr, "wrote %d lifecycle span(s) to %s\n", spans, path)
}

// reportProfiles renders the sharded-engine phase profile per run: where
// the executor spent its epochs (batched vs serial-degraded events) and
// its coordinator wall-clock (barrier wait, merge). Event counters are
// deterministic for a given scenario/seed/shard count; the wall-clock
// columns are measurements and vary run to run — -observe therefore
// never participates in determinism comparisons. Serial-engine runs have
// no profile and render as dashes.
func reportProfiles(w io.Writer, outs []experiment.ScenarioOutcome) {
	fmt.Fprintln(w, "Sharded-engine phase profile")
	header := []string{"scenario", "seed", "shards", "epochs", "batch-ev", "serial-ev", "episodes", "barrier-ms", "merge-ms", "lane-imb"}
	var rows [][]string
	for _, o := range outs {
		for i, r := range o.Reports {
			if r.Result == nil {
				continue
			}
			res := r.Result
			row := []string{o.Scenario.Name, fmt.Sprintf("%d", o.Seeds[i]), fmt.Sprintf("%d", res.SimShards)}
			p := res.ShardProfile
			if p == nil {
				row = append(row, "-", "-", "-", "-", "-", "-", "-")
			} else {
				row = append(row,
					fmt.Sprintf("%d", p.Epochs),
					fmt.Sprintf("%d", p.BatchEvents),
					fmt.Sprintf("%d", p.SerialEvents),
					fmt.Sprintf("%d", p.SerialEpisodes),
					fmt.Sprintf("%.2f", p.BarrierWaitSec*1e3),
					fmt.Sprintf("%.2f", p.MergeSec*1e3),
					laneImbalance(p.LaneEvents),
				)
			}
			rows = append(rows, row)
		}
	}
	plot.Table(w, header, rows)
}

// laneImbalance is max/mean over per-lane batch event counts — 1.00 is a
// perfectly balanced batch workload; high values mean the barrier waits
// on one hot lane.
func laneImbalance(lanes []int64) string {
	var total, max int64
	for _, n := range lanes {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 || len(lanes) == 0 {
		return "-"
	}
	mean := float64(total) / float64(len(lanes))
	return fmt.Sprintf("%.2f", float64(max)/mean)
}

// runScenarios executes the selected scenarios across the sweep pool and
// renders the summary table. With -record dir it also writes each
// (scenario, seed) schedule as a replayable JSONL trace; the recorded
// schedules are the ones simulated — generation happens once and the
// specs reuse it — so a trace always reproduces the run it sits next to.
// With -trace-out every run records lifecycle spans, exported as one
// JSONL file after the sweep; -observe appends the phase-profile table.
func runScenarios(scens []experiment.Scenario, seeds []int64, recordDir string, observe bool, traceOut string) {
	if recordDir != "" {
		if err := os.MkdirAll(recordDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
			os.Exit(1)
		}
		for i, s := range scens {
			if s.Workload == nil {
				// Stream-only scenario (megacluster family): record
				// incrementally from a throwaway stream — the schedule is
				// never materialized — and let the run pull a fresh stream,
				// which generates the identical sequence for the seed.
				for _, seed := range seeds {
					path := filepath.Join(recordDir, fmt.Sprintf("%s-seed%d.jsonl", s.Name, seed))
					if err := recordStreamTrace(path, s.StreamWorkload(seed)); err != nil {
						fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
						os.Exit(1)
					}
				}
				continue
			}
			generated := make(map[int64][]workload.Submission, len(seeds))
			for _, seed := range seeds {
				subs := s.Workload(seed)
				generated[seed] = subs
				path := filepath.Join(recordDir, fmt.Sprintf("%s-seed%d.jsonl", s.Name, seed))
				if err := recordTrace(path, subs); err != nil {
					fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
					os.Exit(1)
				}
			}
			inner := s.Workload
			scens[i].Workload = func(seed int64) []workload.Submission {
				if subs, ok := generated[seed]; ok {
					return subs
				}
				return inner(seed)
			}
			// The recorded schedules must be the ones simulated, so the
			// run takes the eager path through the cache above.
			scens[i].StreamWorkload = nil
		}
		fmt.Printf("recorded %d trace(s) into %s\n", len(scens)*len(seeds), recordDir)
	}
	if traceOut != "" {
		applyTracer(scens)
	}
	outs, err := experiment.RunScenarios(context.Background(), scens, seeds, experiment.SweepOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	experiment.ReportScenario(os.Stdout, outs)
	if traceOut != "" {
		writeTraceOut(traceOut, outs)
	}
	if observe {
		reportProfiles(os.Stdout, outs)
	}
}

// recordTrace writes one schedule as a JSONL trace file. Record is
// all-or-nothing (it validates the whole schedule before writing), so a
// rejected schedule leaves no partial trace; the empty file from a
// failed create/record is removed.
func recordTrace(path string, subs []workload.Submission) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.Record(f, subs); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// recordStreamTrace drains an arrival stream straight into a JSONL trace
// file, holding O(1) schedule state. A stream that fails mid-way leaves
// no partial trace behind.
func recordStreamTrace(path string, s workload.ArrivalStream) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := workload.RecordStream(f, s); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// runReplay loads a recorded (or hand-written) JSONL trace and runs it as
// a one-off scenario under the default FlowCon setting.
func runReplay(path string, workers, shardSim int, tier metrics.Tier, observe bool, traceOut string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	subs, err := workload.Replay(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	name := filepath.Base(path)
	scen := experiment.Scenario{
		Name:        "replay:" + name,
		Description: "replayed trace " + path,
		Workload:    func(int64) []workload.Submission { return subs },
		Workers:     workers,
	}
	scens := []experiment.Scenario{scen}
	applyShardSim(scens, shardSim)
	applyTraceLevel(scens, tier)
	if traceOut != "" {
		applyTracer(scens)
	}
	outs, err := experiment.RunScenarios(context.Background(), scens,
		[]int64{1}, experiment.SweepOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %s: %d jobs\n", path, len(subs))
	experiment.ReportScenario(os.Stdout, outs)
	if traceOut != "" {
		writeTraceOut(traceOut, outs)
	}
	if observe {
		reportProfiles(os.Stdout, outs)
	}
}
