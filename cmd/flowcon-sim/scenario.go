package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/workload"
)

// runScenarioList prints the whole registry, heavy scenarios included.
func runScenarioList() {
	experiment.ReportScenarioList(os.Stdout, experiment.AllScenarios())
}

// resolveScenarios expands a comma-separated -scenario value into
// scenario definitions, exiting on unknown names. "all" is the sweep
// set: every registered scenario except the heavy megacluster family,
// which runs only when named explicitly.
func resolveScenarios(arg string) []experiment.Scenario {
	if strings.EqualFold(arg, "all") {
		return experiment.Scenarios()
	}
	var scens []experiment.Scenario
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, ok := experiment.ScenarioByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "flowcon-sim: unknown scenario %q (try -scenario-list)\n", name)
			os.Exit(2)
		}
		scens = append(scens, s)
	}
	if len(scens) == 0 {
		fmt.Fprintln(os.Stderr, "flowcon-sim: -scenario needs at least one name")
		os.Exit(2)
	}
	return scens
}

// applyMigrationFlags folds -rebalance and -migration-cost into the
// selected scenario copies: the cost model (when set) reprices each
// scenario's drains and its declarative rebalancer (including built-ins
// like hotspot-rebalance), and -rebalance attaches the GE-aware
// rebalancer to every scenario that does not already define a cluster
// policy. Only an opaque custom Scenario.ClusterPolicy is beyond the
// flags' reach.
func applyMigrationFlags(scens []experiment.Scenario, rebalance bool, costSec float64) {
	cost := cluster.MigrationCost{}
	if costSec > 0 {
		cost = cluster.DefaultMigrationCost()
		cost.FreezeSec = costSec / 2
		cost.ThawSec = costSec / 2
	}
	for i := range scens {
		if costSec > 0 {
			scens[i].MigrationCost = cost
			if scens[i].Rebalance != nil {
				// Copy before repricing — the registry owns the original.
				cfg := *scens[i].Rebalance
				cfg.Cost = cost
				scens[i].Rebalance = &cfg
			}
		}
		if rebalance && scens[i].ClusterPolicy == nil && scens[i].Rebalance == nil {
			scens[i].Rebalance = &migrate.Config{Cost: cost}
			scens[i].ClusterPolicyName = "GE-Rebalancer"
		}
	}
}

// applyShardSim folds -shard-sim into the selected scenario copies
// (0 = auto, resolved by the runner to GOMAXPROCS).
func applyShardSim(scens []experiment.Scenario, shards int) {
	if shards == 1 {
		return // serial engine, the default
	}
	if shards == 0 {
		shards = -1 // Spec.SimShards auto
	}
	for i := range scens {
		scens[i].SimShards = shards
	}
}

// applyTraceLevel folds -trace-level into the selected scenario copies.
// The summary default is the zero value, so only dense needs writing.
func applyTraceLevel(scens []experiment.Scenario, tier metrics.Tier) {
	if tier == metrics.TierSummary {
		return
	}
	for i := range scens {
		scens[i].TraceLevel = tier
	}
}

// runScenarios executes the selected scenarios across the sweep pool and
// renders the summary table. With -record dir it also writes each
// (scenario, seed) schedule as a replayable JSONL trace; the recorded
// schedules are the ones simulated — generation happens once and the
// specs reuse it — so a trace always reproduces the run it sits next to.
func runScenarios(scens []experiment.Scenario, seeds []int64, recordDir string) {
	if recordDir != "" {
		if err := os.MkdirAll(recordDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
			os.Exit(1)
		}
		for i, s := range scens {
			if s.Workload == nil {
				// Stream-only scenario (megacluster family): record
				// incrementally from a throwaway stream — the schedule is
				// never materialized — and let the run pull a fresh stream,
				// which generates the identical sequence for the seed.
				for _, seed := range seeds {
					path := filepath.Join(recordDir, fmt.Sprintf("%s-seed%d.jsonl", s.Name, seed))
					if err := recordStreamTrace(path, s.StreamWorkload(seed)); err != nil {
						fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
						os.Exit(1)
					}
				}
				continue
			}
			generated := make(map[int64][]workload.Submission, len(seeds))
			for _, seed := range seeds {
				subs := s.Workload(seed)
				generated[seed] = subs
				path := filepath.Join(recordDir, fmt.Sprintf("%s-seed%d.jsonl", s.Name, seed))
				if err := recordTrace(path, subs); err != nil {
					fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
					os.Exit(1)
				}
			}
			inner := s.Workload
			scens[i].Workload = func(seed int64) []workload.Submission {
				if subs, ok := generated[seed]; ok {
					return subs
				}
				return inner(seed)
			}
			// The recorded schedules must be the ones simulated, so the
			// run takes the eager path through the cache above.
			scens[i].StreamWorkload = nil
		}
		fmt.Printf("recorded %d trace(s) into %s\n", len(scens)*len(seeds), recordDir)
	}
	outs, err := experiment.RunScenarios(context.Background(), scens, seeds, experiment.SweepOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	experiment.ReportScenario(os.Stdout, outs)
}

// recordTrace writes one schedule as a JSONL trace file. Record is
// all-or-nothing (it validates the whole schedule before writing), so a
// rejected schedule leaves no partial trace; the empty file from a
// failed create/record is removed.
func recordTrace(path string, subs []workload.Submission) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.Record(f, subs); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// recordStreamTrace drains an arrival stream straight into a JSONL trace
// file, holding O(1) schedule state. A stream that fails mid-way leaves
// no partial trace behind.
func recordStreamTrace(path string, s workload.ArrivalStream) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := workload.RecordStream(f, s); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// runReplay loads a recorded (or hand-written) JSONL trace and runs it as
// a one-off scenario under the default FlowCon setting.
func runReplay(path string, workers, shardSim int, tier metrics.Tier) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	subs, err := workload.Replay(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	name := filepath.Base(path)
	scen := experiment.Scenario{
		Name:        "replay:" + name,
		Description: "replayed trace " + path,
		Workload:    func(int64) []workload.Submission { return subs },
		Workers:     workers,
	}
	scens := []experiment.Scenario{scen}
	applyShardSim(scens, shardSim)
	applyTraceLevel(scens, tier)
	outs, err := experiment.RunScenarios(context.Background(), scens,
		[]int64{1}, experiment.SweepOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %s: %d jobs\n", path, len(subs))
	experiment.ReportScenario(os.Stdout, outs)
}
