// Command flowcon-sim regenerates the tables and figures of the FlowCon
// paper (ICPP 2019) on the deterministic simulation substrate, and runs
// the scenario engine's arrival-process stress workloads.
//
// Usage:
//
//	flowcon-sim [-csv dir] [-parallel N] <experiment> [...]
//	flowcon-sim -scenario-list
//	flowcon-sim [-parallel N] [-shard-sim N] [-seeds N] [-record dir] -scenario <name[,name...]|all>
//	flowcon-sim [-workers N] [-shard-sim N] -replay trace.jsonl
//
// where <experiment> is one of: fig1, fig3, fig4, fig5, fig6, fig7, fig8,
// fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, table1,
// table2, all. -parallel N bounds the sweep worker pool (default
// GOMAXPROCS; 1 forces serial execution). Output is byte-identical at
// any pool width — runs land in spec order regardless of interleaving.
//
// Scenarios are seeded arrival-process workloads (Poisson, ON/OFF bursts,
// diurnal cycles, flash crowds, production days, plus the paper's
// schedules) from the named registry; -record writes each generated
// schedule as a replayable JSONL trace and -replay runs such a trace
// (generated or hand-written). Scenarios that provide a streaming
// generator admit arrivals lazily — the megacluster family exists only
// on that path (a million-job schedule is never materialized) and is
// excluded from "-scenario all"; run those by name (see README
// "Workloads").
// -shard-sim N runs each simulation on per-worker event lanes that
// execute in parallel inside conservative epochs (0 = auto/GOMAXPROCS);
// output stays byte-identical to the serial engine at any shard count.
// -trace-level selects metric retention (see README "Observability"):
// the summary default keeps O(jobs) online summaries; dense retains full
// per-job series for trace and figure export. Experiment (figure) mode
// always collects dense — figures re-plot raw samples by definition.
// -observe prints the sharded-engine phase profile (epochs, serial
// degrades, per-lane event counts, barrier/merge wall-time) per run, and
// -trace-out writes every run's job-lifecycle spans as JSONL; both are
// pure observers (see docs/OBSERVABILITY.md).
// -cpuprofile/-memprofile capture pprof profiles in every mode (see the
// README's Profiling subsection).
// The cluster-scale scenario (256 workers, thousands of jobs) is the
// perf-baseline workload that `make bench-json` records in BENCH_sim.json;
// see the README's Performance section.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/plot"
)

func main() {
	csvDir := flag.String("csv", "", "also export figure data as CSV into this directory")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool width for experiment sweeps (1 = serial)")
	scenario := flag.String("scenario", "", "run registered scenarios (comma-separated names, or \"all\")")
	scenarioList := flag.Bool("scenario-list", false, "list the scenario registry and exit")
	seeds := flag.Int("seeds", 3, "seeds per scenario (1..N)")
	record := flag.String("record", "", "with -scenario: write each generated schedule as a JSONL trace into this directory")
	replay := flag.String("replay", "", "run a recorded JSONL trace as a one-off scenario")
	replayWorkers := flag.Int("workers", 1, "with -replay: cluster size for the replayed trace")
	rebalance := flag.Bool("rebalance", false,
		"with -scenario: attach the GE-aware migration rebalancer to scenarios that do not already define a cluster policy")
	migrationCost := flag.Float64("migration-cost", 0,
		"with -scenario: fixed freeze+thaw seconds charged per live migration (0 = calibrated default; transfer time from memory size is added on top)")
	shardSim := flag.Int("shard-sim", 1,
		"per-run event-lane parallelism: worker lanes execute in parallel inside one simulation (0 = auto/GOMAXPROCS, 1 = serial engine); output is byte-identical at any value")
	traceLevel := flag.String("trace-level", "summary",
		"metric retention per run: summary (constant-memory online summaries, the default) or dense (full per-job series, O(jobs × makespan) memory); reports are identical either way")
	observe := flag.Bool("observe", false,
		"with -scenario/-replay: print the sharded-engine phase profile per run after the summary table (event counters are deterministic; wall-clock columns vary run to run)")
	traceOut := flag.String("trace-out", "",
		"with -scenario/-replay: write every run's job-lifecycle spans (submit → admit → place → run → migrate* → exit/fail) as JSONL into this file; tracing is a pure observer — simulation output is unchanged")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = usage
	flag.Parse()
	if *shardSim < 0 {
		fmt.Fprintln(os.Stderr, "flowcon-sim: -shard-sim must be >= 0")
		os.Exit(2)
	}
	tier, err := metrics.ParseTier(*traceLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim: -trace-level must be summary or dense")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
			}
		}()
	}
	experiment.SetDefaultParallelism(*parallel)
	// Each mode accepts only its own flags; anything else is refused
	// rather than silently dropped.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	mode, allowed := "experiment", map[string]bool{"csv": true, "parallel": true}
	switch {
	case *scenarioList:
		mode, allowed = "-scenario-list", map[string]bool{"scenario-list": true}
	case *replay != "":
		mode, allowed = "-replay", map[string]bool{"replay": true, "workers": true, "parallel": true,
			"shard-sim": true, "trace-level": true, "observe": true, "trace-out": true}
	case *scenario != "":
		mode, allowed = "-scenario", map[string]bool{"scenario": true, "seeds": true, "record": true,
			"parallel": true, "rebalance": true, "migration-cost": true, "shard-sim": true,
			"trace-level": true, "observe": true, "trace-out": true}
	}
	// The profiling flags apply to every mode.
	allowed["cpuprofile"] = true
	allowed["memprofile"] = true
	for name := range set {
		if !allowed[name] {
			fmt.Fprintf(os.Stderr, "flowcon-sim: flag -%s does not apply in %s mode\n", name, mode)
			os.Exit(2)
		}
	}
	if mode != "experiment" && flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "flowcon-sim: %s mode takes no experiment arguments (got %q)\n", mode, flag.Args())
		os.Exit(2)
	}
	if *scenarioList {
		runScenarioList()
		return
	}
	if *replay != "" {
		runReplay(*replay, *replayWorkers, *shardSim, tier, *observe, *traceOut)
		return
	}
	if *scenario != "" {
		if *seeds <= 0 {
			fmt.Fprintln(os.Stderr, "flowcon-sim: -seeds must be positive")
			os.Exit(2)
		}
		if *migrationCost < 0 {
			fmt.Fprintln(os.Stderr, "flowcon-sim: -migration-cost must be non-negative")
			os.Exit(2)
		}
		scens := resolveScenarios(*scenario)
		applyMigrationFlags(scens, *rebalance, *migrationCost)
		applyShardSim(scens, *shardSim)
		applyTraceLevel(scens, tier)
		runScenarios(scens, experiment.ScenarioSeeds(*seeds), *record, *observe, *traceOut)
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
			os.Exit(1)
		}
	}
	app := &app{csvDir: *csvDir}
	want := map[string]bool{}
	for _, a := range args {
		want[strings.ToLower(a)] = true
	}
	if want["all"] {
		for name := range app.experiments() {
			want[name] = true
		}
		delete(want, "all")
	}
	names := make([]string, 0, len(want))
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	exps := app.experiments()
	for _, name := range names {
		fn, ok := exps[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "flowcon-sim: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		fn()
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: flowcon-sim [-csv dir] [-parallel N] <experiment> [...]
       flowcon-sim -scenario-list
       flowcon-sim [-parallel N] [-shard-sim N] [-seeds N] [-record dir]
                   [-rebalance] [-migration-cost sec] [-trace-level summary|dense]
                   [-observe] [-trace-out spans.jsonl]
                   -scenario <name[,...]|all>
       flowcon-sim [-workers N] [-shard-sim N] [-trace-level summary|dense]
                   [-observe] [-trace-out spans.jsonl]
                   -replay trace.jsonl

-parallel N  sweeps runs across a worker pool; -shard-sim N parallelizes
inside each run (per-worker event lanes, 0 = auto/GOMAXPROCS, 1 = serial
engine). Output is byte-identical at any width of either. -trace-level
picks metric retention: summary (default) keeps constant-memory online
summaries per job; dense keeps full series for trace export (experiment
mode always runs dense — figures re-plot raw samples). -observe prints
the sharded-engine phase profile per run; -trace-out exports every run's
job-lifecycle spans as JSONL (see docs/OBSERVABILITY.md). -cpuprofile
and -memprofile write pprof profiles in every mode.

experiments:
  fig1      training progress of five models (motivation)
  fig3-6    fixed schedule completion times over (alpha, itval) grids
  fig7/8    CPU usage traces, FlowCon vs NA, 3 fixed jobs
  fig9      five random jobs across settings
  fig10/11  CPU usage traces, FlowCon vs NA, 5 random jobs
  fig12     ten random jobs, FlowCon-10%%-20 vs NA
  fig13/14  growth efficiency of Job-2 / Job-6 (from fig12 runs)
  fig15/16  CPU usage traces, 10 jobs
  fig17     fifteen random jobs, FlowCon-10%%-40 vs NA
  table1    the tested-models catalog
  table2    MNIST (Tensorflow) completion reductions
  seeds     multi-seed robustness study (beyond the paper)
  ablations design-choice ablations (backoff, listeners, beta, baselines,
            contention, failure recovery, checkpointing)
  all       everything above
`)
}

// app caches expensive shared runs (fig12's pair feeds five figures).
type app struct {
	csvDir string

	fixedFC, fixedNA *experiment.Result
	randFC, randNA   *experiment.Result
	tenFC, tenNA     *experiment.Result
}

func (a *app) fixedPair() (*experiment.Result, *experiment.Result) {
	if a.fixedFC == nil {
		a.fixedFC, a.fixedNA = experiment.FixedPair()
	}
	return a.fixedFC, a.fixedNA
}

func (a *app) randomPair() (*experiment.Result, *experiment.Result) {
	if a.randFC == nil {
		a.randFC, a.randNA = experiment.RandomPair()
	}
	return a.randFC, a.randNA
}

func (a *app) tenPair() (*experiment.Result, *experiment.Result) {
	if a.tenFC == nil {
		a.tenFC, a.tenNA = experiment.TenJobPair()
	}
	return a.tenFC, a.tenNA
}

// exportCPU writes a result's CPU traces as CSV if -csv was given.
func (a *app) exportCPU(name string, res *experiment.Result) {
	if a.csvDir == "" {
		return
	}
	var lines []plot.Line
	for _, j := range res.Jobs {
		lines = append(lines, plot.Line{Name: j.Name, Points: res.Collector.CPUSeries(j.Name).Points()})
	}
	a.writeCSV(name, lines)
}

func (a *app) writeCSV(name string, lines []plot.Line) {
	if a.csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(a.csvDir, name+".csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
		return
	}
	defer f.Close()
	if err := plot.CSV(f, lines); err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-sim:", err)
	}
}

func (a *app) experiments() map[string]func() {
	return map[string]func(){
		"fig1": func() {
			curves := experiment.Fig1()
			experiment.ReportFig1(os.Stdout, curves)
			var lines []plot.Line
			for _, c := range curves {
				var pts []metrics.Point
				for _, p := range c.Points {
					pts = append(pts, metrics.Point{T: p.TimeFrac, V: p.Progress})
				}
				lines = append(lines, plot.Line{Name: c.Model, Points: pts})
			}
			a.writeCSV("fig1", lines)
		},
		"fig3": func() { experiment.ReportSweep(os.Stdout, experiment.Fig3()) },
		"fig4": func() { experiment.ReportSweep(os.Stdout, experiment.Fig4()) },
		"fig5": func() { experiment.ReportSweep(os.Stdout, experiment.Fig5()) },
		"fig6": func() { experiment.ReportSweep(os.Stdout, experiment.Fig6()) },
		"fig7": func() {
			fc, _ := a.fixedPair()
			experiment.ReportCPUTrace(os.Stdout, fc, "Fig7: CPU usage of FlowCon (alpha=5%, itval=20, 3 jobs)")
			a.exportCPU("fig7", fc)
		},
		"fig8": func() {
			_, na := a.fixedPair()
			experiment.ReportCPUTrace(os.Stdout, na, "Fig8: CPU usage of NA (3 jobs)")
			a.exportCPU("fig8", na)
		},
		"fig9": func() { experiment.ReportSweep(os.Stdout, experiment.Fig9()) },
		"fig10": func() {
			fc, _ := a.randomPair()
			experiment.ReportCPUTrace(os.Stdout, fc, "Fig10: CPU usage of FlowCon (alpha=3%, itval=30, 5 jobs)")
			a.exportCPU("fig10", fc)
		},
		"fig11": func() {
			_, na := a.randomPair()
			experiment.ReportCPUTrace(os.Stdout, na, "Fig11: CPU usage of NA (5 jobs)")
			a.exportCPU("fig11", na)
		},
		"fig12": func() {
			fc, na := a.tenPair()
			experiment.ReportPair(os.Stdout, fc, na, "Fig12: ten jobs with random submission")
		},
		"fig13": func() {
			fc, na := a.tenPair()
			experiment.ReportGrowth(os.Stdout, fc, na, "Job-2", "Fig13: growth efficiency of Job-2")
			a.writeCSV("fig13", []plot.Line{
				{Name: "FlowCon-Job-2", Points: experiment.GrowthTrace(fc, "Job-2").Points()},
				{Name: "NA-Job-2", Points: experiment.GrowthTrace(na, "Job-2").Points()},
			})
		},
		"fig14": func() {
			fc, na := a.tenPair()
			experiment.ReportGrowth(os.Stdout, fc, na, "Job-6", "Fig14: growth efficiency of Job-6")
			a.writeCSV("fig14", []plot.Line{
				{Name: "FlowCon-Job-6", Points: experiment.GrowthTrace(fc, "Job-6").Points()},
				{Name: "NA-Job-6", Points: experiment.GrowthTrace(na, "Job-6").Points()},
			})
		},
		"fig15": func() {
			fc, _ := a.tenPair()
			experiment.ReportCPUTrace(os.Stdout, fc, "Fig15: CPU usage of FlowCon (alpha=10%, itval=20, 10 jobs)")
			a.exportCPU("fig15", fc)
		},
		"fig16": func() {
			_, na := a.tenPair()
			experiment.ReportCPUTrace(os.Stdout, na, "Fig16: CPU usage of NA (10 jobs)")
			a.exportCPU("fig16", na)
		},
		"fig17": func() {
			fc, na := experiment.FifteenJobPair()
			experiment.ReportPair(os.Stdout, fc, na, "Fig17: fifteen jobs with random submission")
		},
		"table1": func() { experiment.ReportTable1(os.Stdout) },
		"seeds": func() {
			res := experiment.SeedStudy(10, experiment.DefaultStudySeeds(12), 0.10, 20)
			experiment.ReportSeedStudy(os.Stdout, 10, res)
		},
		"ablations": func() { runAblations() },
		"table2": func() {
			rows := experiment.Table2(experiment.Fig4(), experiment.Fig5())
			experiment.ReportTable2(os.Stdout, rows)
		},
	}
}
