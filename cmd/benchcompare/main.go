// Command benchcompare gates benchmark regressions: it diffs two
// BENCH_sim.json documents and fails when any curated key benchmark
// regressed by more than the threshold.
//
// Usage:
//
//	benchcompare -old BENCH_sim.json -new fresh.json [-threshold 25] [-keys a,b,...]
//
// Both files may be schema-1 (single entry) or schema-2 (history)
// documents (see internal/benchfile); the latest entry of each is
// compared. Only the curated key list is gated — the full ladder is noisy
// at smoke benchtimes, while the keys below are the O(n)-per-op hot paths
// whose regressions compound at cluster scale. A key missing from either
// side is reported but does not fail the gate (benchmark sets evolve
// across PRs).
//
// ns/op comparisons are only meaningful when both documents were recorded
// on the same machine. The committed BENCH_sim.json baseline comes from a
// developer box, so CI does not compare against it directly — the
// benchmark-smoke job regenerates both the merge-base's numbers and the
// head's numbers on the same runner and compares those (see the workflow).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchfile"
)

// defaultKeys are the gated hot paths: the per-event engine cost, the
// daemon's settle/reallocate ladder top, one full Algorithm 1 cycle, and
// the migration round trip — the benchmarks the ROADMAP's perf baseline
// tracks across PRs.
var defaultKeys = []string{
	"ScheduleCancel/256",
	"Settle/256",
	"Reallocate/256",
	"Algorithm1/256",
	"CheckpointRestore/256",
	"Migrate/256",
}

func nsByName(e benchfile.Entry) map[string]float64 {
	m := make(map[string]float64, len(e.Benchmarks))
	for _, b := range e.Benchmarks {
		m[b.Name] = b.NsPerOp
	}
	return m
}

func main() {
	oldPath := flag.String("old", "BENCH_sim.json", "baseline document")
	newPath := flag.String("new", "", "freshly generated document (required)")
	threshold := flag.Float64("threshold", 25, "max allowed ns/op regression in percent")
	keysFlag := flag.String("keys", "", "comma-separated key benchmarks (default: curated hot-path list)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -new is required")
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: -threshold must be positive")
		os.Exit(2)
	}
	keys := defaultKeys
	if *keysFlag != "" {
		keys = nil
		for _, k := range strings.Split(*keysFlag, ",") {
			if k = strings.TrimSpace(k); k != "" {
				keys = append(keys, k)
			}
		}
	}

	oldE, err := loadLatest(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	newE, err := loadLatest(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(1)
	}
	oldNs, newNs := nsByName(oldE), nsByName(newE)

	fmt.Printf("comparing %s (baseline %s) vs %s (%s), threshold +%.0f%%\n",
		*oldPath, oldE.Commit, *newPath, newE.Commit, *threshold)
	failed := 0
	for _, k := range keys {
		o, okO := oldNs[k]
		n, okN := newNs[k]
		switch {
		case !okO || !okN:
			fmt.Printf("  %-24s skipped (missing from %s)\n", k, missingSide(okO, okN))
		case o <= 0:
			fmt.Printf("  %-24s skipped (baseline 0 ns/op)\n", k)
		default:
			delta := (n - o) / o * 100
			verdict := "ok"
			if delta > *threshold {
				verdict = "REGRESSED"
				failed++
			}
			fmt.Printf("  %-24s %10.1f -> %10.1f ns/op  %+6.1f%%  %s\n", k, o, n, delta, verdict)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d key benchmark(s) regressed more than %.0f%%\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Println("no key benchmark regressed beyond the threshold")
}

func loadLatest(path string) (benchfile.Entry, error) {
	rep, err := benchfile.Load(path)
	if err != nil {
		return benchfile.Entry{}, err
	}
	return rep.Latest()
}

func missingSide(okOld, okNew bool) string {
	switch {
	case !okOld && !okNew:
		return "both"
	case !okOld:
		return "baseline"
	default:
		return "fresh run"
	}
}
