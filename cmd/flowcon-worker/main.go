// Command flowcon-worker runs a live worker agent: an in-process container
// runtime (synthetic DL jobs advancing in wall-clock time) exposed over
// the versioned /v1 HTTP protocol a flowcon-manager governs — the worker
// half of the paper's Figure 2, deployable on a separate machine.
//
// Usage:
//
//	flowcon-worker [-addr :7070] [-capacity 1.0] [-settle 250ms]
//	               [-max-running 0] [-queue-depth 16]
//
// -max-running bounds concurrently running jobs admitted through
// /v1/jobs (0 = unlimited); overflow queues up to -queue-depth deep, and
// beyond that submissions get 429.
//
// On SIGINT/SIGTERM the worker shuts down gracefully: it stops accepting
// submissions (503), stops every running container, finishes in-flight
// HTTP requests, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/agent"
	"repro/internal/livedock"
	"repro/internal/runtime"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	capacity := flag.Float64("capacity", 1.0, "normalized CPU capacity of this node")
	settle := flag.Duration("settle", 250*time.Millisecond, "background accounting period")
	maxRunning := flag.Int("max-running", 0, "max concurrently running jobs via /v1/jobs (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 16, "admission queue depth before /v1/jobs returns 429")
	flag.Parse()

	if *capacity <= 0 {
		log.Fatal("flowcon-worker: capacity must be positive")
	}
	if *maxRunning < 0 || *queueDepth < 0 {
		log.Fatal("flowcon-worker: admission limits must be non-negative")
	}
	node := livedock.NewNode(*capacity)
	node.OnExit(func(c runtime.Container) {
		log.Printf("container %s (%s) exited", c.ID, c.Name)
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Background settle loop bounds completion-detection latency even when
	// no manager is polling.
	go func() {
		ticker := time.NewTicker(*settle)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				node.Settle()
			}
		}
	}()

	srv := agent.NewServer(node, *capacity)
	srv.SetAdmissionLimits(*maxRunning, *queueDepth)
	httpSrv := &http.Server{Addr: *addr, Handler: logRequests(srv.Handler())}

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Print("flowcon-worker: shutting down")
		// Graceful sequence: refuse new submissions, stop the containers,
		// then let in-flight HTTP requests finish.
		srv.Drain()
		for _, c := range node.PS(false) {
			if err := node.Stop(c.ID); err != nil {
				log.Printf("flowcon-worker: stopping %s: %v", c.ID, err)
			}
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("flowcon-worker: shutdown: %v", err)
		}
	}()

	log.Printf("flowcon-worker listening on %s (capacity %.2f)", *addr, *capacity)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("flowcon-worker: %v", err)
	}
	<-done
	log.Print("flowcon-worker: stopped")
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		log.Printf("%s %s", r.Method, r.URL.Path)
	})
}
