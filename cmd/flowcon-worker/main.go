// Command flowcon-worker runs a live worker agent: an in-process container
// runtime (synthetic DL jobs advancing in wall-clock time) exposed over
// the HTTP protocol a flowcon-manager governs — the worker half of the
// paper's Figure 2, deployable on a separate machine.
//
// Usage:
//
//	flowcon-worker [-addr :7070] [-capacity 1.0] [-settle 250ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/agent"
	"repro/internal/livedock"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	capacity := flag.Float64("capacity", 1.0, "normalized CPU capacity of this node")
	settle := flag.Duration("settle", 250*time.Millisecond, "background accounting period")
	flag.Parse()

	if *capacity <= 0 {
		log.Fatal("flowcon-worker: capacity must be positive")
	}
	node := livedock.NewNode(*capacity)
	node.OnExit(func(id string) {
		log.Printf("container %s exited", id)
	})

	// Background settle loop bounds completion-detection latency even when
	// no manager is polling.
	go func() {
		ticker := time.NewTicker(*settle)
		defer ticker.Stop()
		for range ticker.C {
			node.Settle()
		}
	}()

	srv := agent.NewServer(node, *capacity)
	log.Printf("flowcon-worker listening on %s (capacity %.2f)", *addr, *capacity)
	if err := http.ListenAndServe(*addr, logRequests(srv.Handler())); err != nil {
		log.Fatal(fmt.Errorf("flowcon-worker: %w", err))
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		log.Printf("%s %s", r.Method, r.URL.Path)
	})
}
