// Command flowcon-worker runs a live worker agent: an in-process container
// runtime (synthetic DL jobs advancing in wall-clock time) exposed over
// the versioned /v1 HTTP protocol a flowcon-manager governs — the worker
// half of the paper's Figure 2, deployable on a separate machine.
//
// Usage:
//
//	flowcon-worker [-addr :7070] [-capacity 1.0] [-settle 250ms]
//	               [-max-running 0] [-queue-depth 16]
//	               [-log-level info] [-log-format text]
//
// -max-running bounds concurrently running jobs admitted through
// /v1/jobs (0 = unlimited); overflow queues up to -queue-depth deep, and
// beyond that submissions get 429.
//
// The worker serves live telemetry on /v1/metrics (Prometheus text) and
// /v1/healthz (readiness + backpressure); see docs/OBSERVABILITY.md.
// Logging is structured (log/slog) behind the shared -log-level /
// -log-format pair; per-request access logs appear at debug level.
//
// On SIGINT/SIGTERM the worker shuts down gracefully: it stops accepting
// submissions (503), stops every running container, finishes in-flight
// HTTP requests, and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/agent"
	"repro/internal/livedock"
	"repro/internal/runtime"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	capacity := flag.Float64("capacity", 1.0, "normalized CPU capacity of this node")
	settle := flag.Duration("settle", 250*time.Millisecond, "background accounting period")
	maxRunning := flag.Int("max-running", 0, "max concurrently running jobs via /v1/jobs (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 16, "admission queue depth before /v1/jobs returns 429")
	logLevel, logFormat := telemetry.LogFlags(flag.CommandLine)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowcon-worker:", err)
		os.Exit(2)
	}
	if *capacity <= 0 {
		logger.Error("capacity must be positive", "capacity", *capacity)
		os.Exit(2)
	}
	if *maxRunning < 0 || *queueDepth < 0 {
		logger.Error("admission limits must be non-negative",
			"max_running", *maxRunning, "queue_depth", *queueDepth)
		os.Exit(2)
	}
	node := livedock.NewNode(*capacity)
	node.OnExit(func(c runtime.Container) {
		logger.Info("container exited", "id", c.ID, "name", c.Name)
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Background settle loop bounds completion-detection latency even when
	// no manager is polling.
	go func() {
		ticker := time.NewTicker(*settle)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				node.Settle()
			}
		}
	}()

	srv := agent.NewServer(node, *capacity)
	srv.SetAdmissionLimits(*maxRunning, *queueDepth)
	httpSrv := &http.Server{Addr: *addr, Handler: logRequests(logger, srv.Handler())}

	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Info("flowcon-worker: shutting down")
		// Graceful sequence: refuse new submissions, stop the containers,
		// then let in-flight HTTP requests finish.
		srv.Drain()
		for _, c := range node.PS(false) {
			if err := node.Stop(c.ID); err != nil {
				logger.Warn("stopping container", "id", c.ID, "err", err)
			}
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("http shutdown", "err", err)
		}
	}()

	logger.Info("flowcon-worker listening", "addr", *addr, "capacity", *capacity)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	<-done
	logger.Info("flowcon-worker: stopped")
}

// logRequests is a minimal access log at debug level — quiet by default,
// -log-level debug turns it on.
func logRequests(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		logger.Debug("request", "method", r.Method, "path", r.URL.Path)
	})
}
