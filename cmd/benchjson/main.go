// Command benchjson records the repo's perf trajectory: it runs the
// simulation hot-path microbenchmarks (event cancellation, daemon
// settle/reallocate, Algorithm 1, the migration ladder, sharded lanes)
// across the 16/64/256 containers-per-node ladder, runs the cluster-scale
// scenario end to end — serial engine, sharded executor, and a serial
// dense-tier run — and appends the results as one per-commit entry to
// BENCH_sim.json.
//
// Usage:
//
//	benchjson [-out BENCH_sim.json] [-benchtime 1s] [-parallel N] [-shards N] [-mega smoke|full|off]
//
// -mega appends a megacluster run to the entry: "smoke" (the default)
// runs megacluster-smoke, the CI-sized 1000-worker slice (~50k jobs);
// "full" runs the complete ~1M-job megacluster day through the streaming
// admission path; "off" skips the family. The recorded row carries
// jobs_per_sim_sec (sustained admission throughput) and
// arrivals_streamed alongside the usual wall/memory columns.
//
// Each scenario run records the metric tier it used (trace_level) and the
// collector's retained observability memory (collector_bytes); comparing
// the summary and dense serial runs of one entry shows the constant-memory
// tier's savings at cluster scale. The dense run also measures
// sketch-vs-dense accuracy (sketch_err_p50/p95/p99): it holds both the raw
// CPU series and the streaming sketches, so the exact quantiles are
// available to diff against. The entry layout is documented in
// docs/BENCH_SCHEMA.md.
//
// BENCH_sim.json is a history document (internal/benchfile, schema 2):
// every invocation appends an entry stamped with the current git revision,
// preserving the prior points, so the file records the cross-PR trajectory
// machine-readably. A legacy single-entry document (schema 1) is migrated
// in place on first append. The microbenchmarks go through
// `go test -bench`, so the recorded numbers are exactly what a developer
// sees locally; the scenarios run in-process. CI runs this with
// -benchtime=1x as a smoke check and uploads the artifact, and
// `make bench-compare` diffs a fresh run against the committed history to
// gate regressions.
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfile"
	"repro/internal/experiment"
	"repro/internal/metrics"
)

// benchPackages are the packages holding the hot-path microbenchmarks,
// including the migration ladder (checkpoint/restore in simdocker, full
// manager-mediated migrate and rebalancer scans in migrate).
var benchPackages = []string{
	"./internal/sim",
	"./internal/simdocker",
	"./internal/flowcon",
	"./internal/migrate",
}

// scenarioName is the registered cluster-scale stress scenario.
const scenarioName = "cluster-scale"

// benchLine matches `BenchmarkName-8   123   456.7 ns/op  [value unit]...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\S+)\s+ns/op(.*)$`)

func main() {
	const usage = "usage: benchjson [-out file] [-benchtime 1s] [-parallel N] [-shards N] [-mega smoke|full|off]"
	out := "BENCH_sim.json"
	benchtime := "1s"
	parallel := runtime.GOMAXPROCS(0)
	shards := runtime.GOMAXPROCS(0)
	mega := "smoke"
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		if i+1 >= len(args) {
			fatalf("flag %s needs a value (%s)", args[i], usage)
		}
		switch args[i] {
		case "-out":
			i++
			out = args[i]
		case "-benchtime":
			i++
			benchtime = args[i]
		case "-parallel":
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				fatalf("bad -parallel %q", args[i])
			}
			parallel = n
		case "-shards":
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				fatalf("bad -shards %q", args[i])
			}
			shards = n
		case "-mega":
			i++
			mega = args[i]
			switch mega {
			case "smoke", "full", "off":
			default:
				fatalf("bad -mega %q (want smoke, full or off)", mega)
			}
		default:
			fatalf("unknown flag %q (%s)", args[i], usage)
		}
	}
	experiment.SetDefaultParallelism(parallel)

	entry := benchfile.Entry{
		Commit:      gitCommit(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BenchTime:   benchtime,
	}

	var err error
	entry.Benchmarks, err = runBenchmarks(benchtime)
	if err != nil {
		fatalf("microbenchmarks: %v", err)
	}
	// The scenario runs in three configurations: the serial summary-tier
	// engine is the baseline the trajectory has always tracked; the
	// sharded run records what the epoch-parallel executor buys on this
	// box (bounded by GOMAXPROCS); and a serial dense-tier run anchors
	// the memory comparison (collector_bytes summary vs dense) and
	// measures sketch-vs-dense quantile accuracy.
	for _, simShards := range []int{1, shards} {
		sr, err := runScenario(scenarioName, simShards, metrics.TierSummary)
		if err != nil {
			fatalf("scenario (shards=%d): %v", simShards, err)
		}
		entry.Scenarios = append(entry.Scenarios, sr)
		if simShards == shards && shards == 1 {
			break // one core: the second run would duplicate the first
		}
	}
	dense, err := runScenario(scenarioName, 1, metrics.TierDense)
	if err != nil {
		fatalf("scenario (dense): %v", err)
	}
	entry.Scenarios = append(entry.Scenarios, dense)
	// The chaos row tracks the self-healing layer's trajectory: wall cost
	// of the fault-injected run plus the availability ledger (downtime,
	// restart provenance, wasted work, MTTR) for the chaos-day storm.
	chaos, err := runScenario("chaos-day", 1, metrics.TierSummary)
	if err != nil {
		fatalf("scenario (chaos-day): %v", err)
	}
	entry.Scenarios = append(entry.Scenarios, chaos)
	// The megacluster run exercises the streaming admission path at the
	// ROADMAP's thousand-worker scale; its row is where the trajectory
	// tracks sustained jobs/sec and the O(1)-workload memory claim. It
	// runs sharded so the entry also records the epoch profile at that
	// scale (on a one-core box pass -shards > 1 to exercise the epochs).
	if mega != "off" {
		name := "megacluster-smoke"
		if mega == "full" {
			name = "megacluster"
		}
		sr, err := runScenario(name, shards, metrics.TierSummary)
		if err != nil {
			fatalf("scenario (%s): %v", name, err)
		}
		entry.Scenarios = append(entry.Scenarios, sr)
	}

	rep, err := benchfile.Load(out)
	if err != nil {
		// Missing or unreadable history starts fresh; a malformed existing
		// document is replaced rather than silently discarded mid-file.
		rep = benchfile.Report{SchemaVersion: benchfile.SchemaVersion}
	}
	rep.Entries = append(rep.Entries, entry)
	if err := rep.Write(out); err != nil {
		fatalf("write: %v", err)
	}
	last := entry.Scenarios[len(entry.Scenarios)-1]
	fmt.Printf("appended entry %s to %s: %d benchmarks, %d scenario runs (last: shards=%d, %.1fs wall), %d entries total\n",
		entry.Commit, out, len(entry.Benchmarks), len(entry.Scenarios), last.SimShards, last.WallSec, len(rep.Entries))
}

// gitCommit returns the abbreviated HEAD revision, or "unknown".
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runBenchmarks shells out to `go test -bench` and parses the result
// lines, tracking the current package from the interleaved `pkg:` header.
func runBenchmarks(benchtime string) ([]benchfile.Benchmark, error) {
	cmd := exec.Command("go", append([]string{
		"test", "-run", "^$", "-bench", ".", "-benchtime", benchtime,
	}, benchPackages...)...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	var benches []benchfile.Benchmark
	pkg := ""
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := benchfile.Benchmark{
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Package:    pkg,
			Iterations: iters,
			NsPerOp:    ns,
		}
		// Custom metrics follow as `value unit` pairs.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[fields[i+1]] = v
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from go test output")
	}
	return benches, nil
}

// runScenario executes one registered scenario once (seed 1) at the
// given shard count and metric tier, recording the simulated outcome, its
// wall-clock cost, and the collector's retained memory. A dense-tier run
// additionally measures sketch-vs-exact quantile accuracy across its jobs.
func runScenario(name string, simShards int, tier metrics.Tier) (benchfile.ScenarioResult, error) {
	scen, ok := experiment.ScenarioByName(name)
	if !ok {
		return benchfile.ScenarioResult{}, fmt.Errorf("scenario %q not registered", name)
	}
	scen.SimShards = simShards
	scen.TraceLevel = tier
	const seed = 1
	start := time.Now()
	outs, err := experiment.RunScenarios(context.Background(),
		[]experiment.Scenario{scen}, []int64{seed}, experiment.SweepOptions{})
	if err != nil {
		return benchfile.ScenarioResult{}, err
	}
	wall := time.Since(start).Seconds()
	rep := outs[0].Reports[0]
	if rep.Err != nil {
		return benchfile.ScenarioResult{}, rep.Err
	}
	res := rep.Result
	sr := benchfile.ScenarioResult{
		Name:             name,
		Seed:             seed,
		Workers:          scen.Workers,
		SimShards:        res.SimShards,
		SimBatches:       res.SimBatches,
		Jobs:             res.Submitted,
		MakespanSec:      res.Makespan,
		Completed:        res.Completed,
		WallSec:          wall,
		TraceLevel:       tier.String(),
		CollectorBytes:   int64(res.Collector.MemoryBytes()),
		ArrivalsStreamed: scen.StreamWorkload != nil,
	}
	if wall > 0 {
		sr.SimulatedPerWallSec = res.Makespan / wall
	}
	if res.Makespan > 0 {
		sr.JobsPerSimSec = float64(res.Submitted) / res.Makespan
	}
	// Sharded runs carry the executor's phase profile so the epoch-
	// barrier work in the sharding roadmap item starts from measured
	// numbers (serial runs have no profile).
	if p := res.ShardProfile; p != nil {
		sr.Epochs = p.Epochs
		sr.BatchEvents = p.BatchEvents
		sr.SerialEvents = p.SerialEvents
		sr.SerialEpisodes = p.SerialEpisodes
		sr.BarrierWaitSec = p.BarrierWaitSec
		sr.MergeSec = p.MergeSec
	}
	if tier == metrics.TierDense {
		sr.SketchErrP50, sr.SketchErrP95, sr.SketchErrP99 = sketchError(res.Collector)
	}
	// Fault-injected runs carry the availability ledger (omitted for
	// healthy rows — Result.Availability is attached only when the run saw
	// chaos activity).
	if a := res.Availability; a != nil {
		sr.AvailabilityFrac = a.Frac()
		sr.WorkerDownSec = a.WorkerDownSec
		sr.Crashes = a.Crashes
		sr.Kills = a.Kills
		sr.Degradations = a.Degradations
		sr.Checkpoints = a.Checkpoints
		sr.RestartsFromCkpt = a.RestartsFromCheckpoint
		sr.RestartsFromScratch = a.RestartsFromScratch
		sr.WastedWorkSec = a.WastedWorkSec
		if p := a.MTTRQuantile(0.50); !math.IsNaN(p) {
			sr.MTTRp50Sec = p
		}
		if p := a.MTTRQuantile(0.95); !math.IsNaN(p) {
			sr.MTTRp95Sec = p
		}
		sr.JobsAbandoned = res.Abandoned
		sr.AdmissionsShed = a.Shed
		sr.Cordons = a.Cordons
	}
	return sr, nil
}

// sketchError measures the summary tier's accuracy claim against ground
// truth: for every job with a meaningfully long dense CPU series it
// compares the streaming sketch's p50/p95/p99 to the exact sorted-sample
// quantile and returns the worst relative error per quantile. The
// collector maintains summaries in both tiers, so a dense run holds both
// representations of the same samples.
func sketchError(col *metrics.Collector) (p50, p95, p99 float64) {
	worst := [3]float64{}
	qs := [3]float64{0.5, 0.95, 0.99}
	for _, job := range col.Jobs() {
		series := col.CPUSeries(job.Name)
		sum := col.CPUSummary(job.Name)
		if series == nil || sum == nil || series.Len() < 20 {
			continue
		}
		vals := make([]float64, 0, series.Len())
		for _, p := range series.Points() {
			vals = append(vals, p.V)
		}
		sort.Float64s(vals)
		for i, q := range qs {
			exact := vals[int(q*float64(len(vals)-1))]
			est := sum.Quantile(q)
			rel := math.Abs(est-exact) / math.Max(math.Abs(exact), 1e-9)
			if rel > worst[i] {
				worst[i] = rel
			}
		}
	}
	return worst[0], worst[1], worst[2]
}

func fatalf(format string, args ...any) {
	fmt.Fprintln(os.Stderr, "benchjson: "+fmt.Sprintf(format, args...))
	os.Exit(1)
}
