// Command benchjson records the repo's perf trajectory: it runs the
// simulation hot-path microbenchmarks (event cancellation, daemon
// settle/reallocate, Algorithm 1) across the 16/64/256 containers-per-node
// ladder, runs the cluster-scale scenario end to end, and writes the
// results as one JSON document (BENCH_sim.json at the repo root).
//
// Usage:
//
//	benchjson [-out BENCH_sim.json] [-benchtime 1s] [-parallel N]
//
// The microbenchmarks go through `go test -bench`, so the recorded numbers
// are exactly what a developer sees locally; the scenario runs in-process.
// CI runs this with -benchtime=1x as a smoke check and uploads the
// artifact, so every PR leaves a comparable perf data point.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
)

// benchPackages are the packages holding the hot-path microbenchmarks,
// including the migration ladder (checkpoint/restore in simdocker, full
// manager-mediated migrate and rebalancer scans in migrate).
var benchPackages = []string{
	"./internal/sim",
	"./internal/simdocker",
	"./internal/flowcon",
	"./internal/migrate",
}

// scenarioName is the registered cluster-scale stress scenario.
const scenarioName = "cluster-scale"

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark id without the GOMAXPROCS suffix,
	// e.g. "Settle/256".
	Name string `json:"name"`
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics carries any custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ScenarioResult is the cluster-scale run's recorded outcome.
type ScenarioResult struct {
	Name        string  `json:"name"`
	Seed        int64   `json:"seed"`
	Workers     int     `json:"workers"`
	Jobs        int     `json:"jobs"`
	MakespanSec float64 `json:"makespan_sec"`
	Completed   bool    `json:"completed"`
	// WallSec is the host wall-clock cost of simulating the scenario —
	// the quantity the perf trajectory tracks.
	WallSec float64 `json:"wall_sec"`
	// SimulatedPerWallSec is virtual seconds simulated per wall second.
	SimulatedPerWallSec float64 `json:"simulated_per_wall_sec"`
}

// Report is the BENCH_sim.json document.
type Report struct {
	SchemaVersion int            `json:"schema_version"`
	GeneratedAt   string         `json:"generated_at"`
	GoVersion     string         `json:"go_version"`
	GOOS          string         `json:"goos"`
	GOARCH        string         `json:"goarch"`
	BenchTime     string         `json:"benchtime"`
	Benchmarks    []Benchmark    `json:"benchmarks"`
	Scenario      ScenarioResult `json:"scenario"`
}

// benchLine matches `BenchmarkName-8   123   456.7 ns/op  [value unit]...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(\S+)\s+ns/op(.*)$`)

func main() {
	out := "BENCH_sim.json"
	benchtime := "1s"
	parallel := runtime.GOMAXPROCS(0)
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-out":
			i++
			out = args[i]
		case "-benchtime":
			i++
			benchtime = args[i]
		case "-parallel":
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				fatalf("bad -parallel %q", args[i])
			}
			parallel = n
		default:
			fatalf("unknown flag %q (usage: benchjson [-out file] [-benchtime 1s] [-parallel N])", args[i])
		}
	}
	experiment.SetDefaultParallelism(parallel)

	rep := Report{
		SchemaVersion: 1,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		BenchTime:     benchtime,
	}

	var err error
	rep.Benchmarks, err = runBenchmarks(benchtime)
	if err != nil {
		fatalf("microbenchmarks: %v", err)
	}
	rep.Scenario, err = runScenario()
	if err != nil {
		fatalf("scenario: %v", err)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Printf("wrote %s: %d benchmarks, scenario %s (%d jobs, %.1fs wall)\n",
		out, len(rep.Benchmarks), rep.Scenario.Name, rep.Scenario.Jobs, rep.Scenario.WallSec)
}

// runBenchmarks shells out to `go test -bench` and parses the result
// lines, tracking the current package from the interleaved `pkg:` header.
func runBenchmarks(benchtime string) ([]Benchmark, error) {
	cmd := exec.Command("go", append([]string{
		"test", "-run", "^$", "-bench", ".", "-benchtime", benchtime,
	}, benchPackages...)...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	var benches []Benchmark
	pkg := ""
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Package:    pkg,
			Iterations: iters,
			NsPerOp:    ns,
		}
		// Custom metrics follow as `value unit` pairs.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[fields[i+1]] = v
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed from go test output")
	}
	return benches, nil
}

// runScenario executes the cluster-scale scenario once (seed 1) and
// records both the simulated outcome and its wall-clock cost.
func runScenario() (ScenarioResult, error) {
	scen, ok := experiment.ScenarioByName(scenarioName)
	if !ok {
		return ScenarioResult{}, fmt.Errorf("scenario %q not registered", scenarioName)
	}
	const seed = 1
	start := time.Now()
	outs, err := experiment.RunScenarios(context.Background(),
		[]experiment.Scenario{scen}, []int64{seed}, experiment.SweepOptions{})
	if err != nil {
		return ScenarioResult{}, err
	}
	wall := time.Since(start).Seconds()
	rep := outs[0].Reports[0]
	if rep.Err != nil {
		return ScenarioResult{}, rep.Err
	}
	res := rep.Result
	sr := ScenarioResult{
		Name:        scenarioName,
		Seed:        seed,
		Workers:     scen.Workers,
		Jobs:        res.Submitted,
		MakespanSec: res.Makespan,
		Completed:   res.Completed,
		WallSec:     wall,
	}
	if wall > 0 {
		sr.SimulatedPerWallSec = res.Makespan / wall
	}
	return sr, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintln(os.Stderr, "benchjson: "+fmt.Sprintf(format, args...))
	os.Exit(1)
}
