package repro

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README's
// quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	subs := FixedSchedule()
	fc := Run(Spec{
		Name:        "api-demo",
		NewPolicy:   FlowConPolicy(0.05, 20),
		Submissions: subs,
	})
	na := Run(Spec{
		Name:        "api-demo-na",
		NewPolicy:   NAPolicy(20),
		Submissions: subs,
	})
	if !fc.Completed || !na.Completed {
		t.Fatal("runs did not complete")
	}
	var sb strings.Builder
	ReportPair(&sb, fc, na, "api demo")
	if !strings.Contains(sb.String(), "makespan") {
		t.Fatalf("report output:\n%s", sb.String())
	}
}

// TestPublicAPICatalog checks the re-exported model catalog and config.
func TestPublicAPICatalog(t *testing.T) {
	if len(Catalog()) != 10 || len(Table1()) != 6 {
		t.Fatal("catalog size wrong through facade")
	}
	p := ModelByKey("RNN-GRU (Tensorflow)")
	if p.Framework != TensorFlow || p.Direction != Decreasing {
		t.Fatalf("profile through facade: %+v", p)
	}
	cfg := DefaultFlowConConfig()
	if cfg.Alpha != 0.03 || cfg.InitialInterval != 30 {
		t.Fatalf("default config: %+v", cfg)
	}
	if NewList.String() != "NL" || CompletingList.String() != "CL" {
		t.Fatal("list aliases wrong")
	}
}

// TestPublicAPICustomProfile validates a user-defined profile and its
// curve types through the facade.
func TestPublicAPICustomProfile(t *testing.T) {
	custom := Profile{
		Name:         "Custom",
		Framework:    PyTorch,
		EvalFunction: "Loss",
		Direction:    Decreasing,
		TotalWork:    50,
		Curve:        LogisticCurve{Start: 10, Final: 1, W0: 10, S: 0.2},
		CPUDemand:    0.5,
	}
	custom.Validate()
	res := Run(Spec{
		Name:        "api-custom",
		NewPolicy:   SLAQPolicy(20),
		Submissions: []Submission{{Name: "c", Profile: custom, At: 0}},
	})
	if !res.Completed {
		t.Fatal("custom profile run failed")
	}
}

// TestPublicAPIArchive round-trips an archive through the facade.
func TestPublicAPIArchive(t *testing.T) {
	res := Run(Spec{
		Name:        "api-archive",
		NewPolicy:   NAPolicy(20),
		Submissions: FixedSchedule(),
	})
	a := res.Collector.Export()
	var sb strings.Builder
	if err := a.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArchive(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Makespan != a.Makespan {
		t.Fatal("archive round trip changed makespan")
	}
}
