// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices called
// out in DESIGN.md. Each benchmark regenerates the paper artifact from
// scratch every iteration and reports the headline quantities (makespan,
// reductions) as custom metrics, so `go test -bench=. -benchmem` both
// times the simulator and reprints the paper-shaped numbers.
package repro

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/flowcon"
	"repro/internal/sched"
	"repro/internal/workload"
)

// reduction returns the relative completion-time reduction of `job` in fc
// versus na.
func reduction(fc, na *experiment.Result, job string) float64 {
	n := na.CompletionTimes()[job]
	return (n - fc.CompletionTimes()[job]) / n
}

// wins counts jobs whose completion time improved under fc.
func wins(fc, na *experiment.Result) int {
	w := 0
	naT := na.CompletionTimes()
	for name, v := range fc.CompletionTimes() {
		if v < naT[name] {
			w++
		}
	}
	return w
}

// BenchmarkTable1 builds and validates the Table 1 model catalog.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table1()
		if len(rows) != 6 {
			b.Fatal("catalog broken")
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: training progress of five models.
func BenchmarkFig1(b *testing.B) {
	var curves []experiment.ModelCurve
	for i := 0; i < b.N; i++ {
		curves = experiment.Fig1()
	}
	b.ReportMetric(float64(len(curves)), "models")
}

// benchFixedSweep runs one of the Figures 3-6 sweeps and reports the tail
// job's best reduction across settings.
func benchFixedSweep(b *testing.B, run func() *experiment.SettingSweep) {
	b.Helper()
	var sw *experiment.SettingSweep
	for i := 0; i < b.N; i++ {
		sw = run()
	}
	na := sw.ResultFor("NA")
	best := 0.0
	for i, s := range sw.Settings {
		if s.NA {
			continue
		}
		if r := reduction(sw.Results[i], na, "MNIST (Tensorflow)"); r > best {
			best = r
		}
	}
	b.ReportMetric(best*100, "best_tail_reduction_%")
	b.ReportMetric(na.Makespan, "na_makespan_s")
}

// BenchmarkFig3 regenerates Figure 3 (α=5%, itval 20..60 + NA).
func BenchmarkFig3(b *testing.B) { benchFixedSweep(b, experiment.Fig3) }

// BenchmarkFig4 regenerates Figure 4 (α=10%, itval 20..60 + NA).
func BenchmarkFig4(b *testing.B) { benchFixedSweep(b, experiment.Fig4) }

// BenchmarkFig5 regenerates Figure 5 (itval=20, α 1..15% + NA).
func BenchmarkFig5(b *testing.B) { benchFixedSweep(b, experiment.Fig5) }

// BenchmarkFig6 regenerates Figure 6 (itval=30, α 1..15% + NA).
func BenchmarkFig6(b *testing.B) { benchFixedSweep(b, experiment.Fig6) }

// BenchmarkTable2 regenerates Table 2 from the Figure 4 and 5 grids.
func BenchmarkTable2(b *testing.B) {
	var rows []experiment.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiment.Table2(experiment.Fig4(), experiment.Fig5())
	}
	worst, best := 1.0, 0.0
	for _, r := range rows {
		if r.Reduction < worst {
			worst = r.Reduction
		}
		if r.Reduction > best {
			best = r.Reduction
		}
	}
	b.ReportMetric(best*100, "best_reduction_%")
	b.ReportMetric(worst*100, "worst_reduction_%")
}

// BenchmarkFig7Fig8 regenerates the fixed-schedule CPU traces (FlowCon and
// NA) and reports the makespan gain.
func BenchmarkFig7Fig8(b *testing.B) {
	var fc, na *experiment.Result
	for i := 0; i < b.N; i++ {
		fc, na = experiment.FixedPair()
	}
	b.ReportMetric((na.Makespan-fc.Makespan)/na.Makespan*100, "makespan_gain_%")
	b.ReportMetric(float64(fc.Collector.CPUSeries("VAE (Pytorch)").Len()), "cpu_samples")
}

// BenchmarkFig9 regenerates Figure 9: five random jobs across settings.
func BenchmarkFig9(b *testing.B) {
	var sw *experiment.SettingSweep
	for i := 0; i < b.N; i++ {
		sw = experiment.Fig9()
	}
	na := sw.ResultFor("NA")
	minWins := len(sw.JobNames)
	for i, s := range sw.Settings {
		if s.NA {
			continue
		}
		if w := wins(sw.Results[i], na); w < minWins {
			minWins = w
		}
	}
	b.ReportMetric(float64(minWins), "min_jobs_improved")
}

// BenchmarkFig10Fig11 regenerates the five-job CPU traces.
func BenchmarkFig10Fig11(b *testing.B) {
	var fc, na *experiment.Result
	for i := 0; i < b.N; i++ {
		fc, na = experiment.RandomPair()
	}
	b.ReportMetric((na.Makespan-fc.Makespan)/na.Makespan*100, "makespan_gain_%")
}

// BenchmarkFig12to16 regenerates the ten-job pair feeding Figures 12-16.
func BenchmarkFig12to16(b *testing.B) {
	var fc, na *experiment.Result
	for i := 0; i < b.N; i++ {
		fc, na = experiment.TenJobPair()
	}
	b.ReportMetric(float64(wins(fc, na)), "jobs_improved_of_10")
	b.ReportMetric((na.Makespan-fc.Makespan)/na.Makespan*100, "makespan_gain_%")
	b.ReportMetric(reduction(fc, na, "Job-6")*100, "job6_reduction_%")
	b.ReportMetric(reduction(fc, na, "Job-2")*100, "job2_reduction_%")
	b.ReportMetric(float64(experiment.GrowthTrace(fc, "Job-6").Len()), "job6_growth_samples")
}

// BenchmarkFig17 regenerates Figure 17: fifteen random jobs.
func BenchmarkFig17(b *testing.B) {
	var fc, na *experiment.Result
	for i := 0; i < b.N; i++ {
		fc, na = experiment.FifteenJobPair()
	}
	b.ReportMetric(float64(wins(fc, na)), "jobs_improved_of_15")
	b.ReportMetric((na.Makespan-fc.Makespan)/na.Makespan*100, "makespan_gain_%")
}

// --- Ablation benches (design choices from DESIGN.md) ---

// tenJobSpec builds the Figure 12 workload under an arbitrary policy.
func tenJobSpec(newPolicy func(flowcon.Tracer) sched.Policy) experiment.Spec {
	return experiment.Spec{
		Name:        "ablation",
		NewPolicy:   newPolicy,
		Submissions: workload.RandomN(10, experiment.SeedRandomTen),
	}
}

// BenchmarkAblationNoBackoff disables the exponential back-off: the
// algorithm runs at the initial interval even when every container has
// converged, trading scheduling overhead for nothing.
func BenchmarkAblationNoBackoff(b *testing.B) {
	var with, without *experiment.Result
	for i := 0; i < b.N; i++ {
		with = experiment.Run(tenJobSpec(experiment.FlowConPolicy(0.10, 20)))
		without = experiment.Run(tenJobSpec(experiment.FlowConPolicyNoBackoff(0.10, 20)))
	}
	b.ReportMetric(float64(with.AlgorithmRuns), "runs_with_backoff")
	b.ReportMetric(float64(without.AlgorithmRuns), "runs_without_backoff")
	b.ReportMetric(without.Makespan-with.Makespan, "makespan_delta_s")
}

// BenchmarkAblationNoListeners disables Algorithm 2's real-time
// interrupts: arrivals wait for the next periodic tick before receiving
// resources, reproducing the latency the paper's listeners eliminate.
func BenchmarkAblationNoListeners(b *testing.B) {
	var with, without *experiment.Result
	for i := 0; i < b.N; i++ {
		with = experiment.Run(tenJobSpec(experiment.FlowConPolicy(0.10, 20)))
		without = experiment.Run(tenJobSpec(experiment.FlowConPolicyNoListeners(0.10, 20)))
	}
	b.ReportMetric(with.Makespan, "makespan_with_listeners_s")
	b.ReportMetric(without.Makespan, "makespan_without_listeners_s")
}

// BenchmarkAblationBeta sweeps the Completing-list floor factor β
// (floor = 1/(β·n)); the paper leaves β unspecified, DESIGN.md fixes 2.
func BenchmarkAblationBeta(b *testing.B) {
	betas := []float64{1, 2, 4, 8}
	makespans := make([]float64, len(betas))
	for i := 0; i < b.N; i++ {
		for j, beta := range betas {
			res := experiment.Run(tenJobSpec(experiment.FlowConPolicyBeta(0.10, 20, beta)))
			makespans[j] = res.Makespan
		}
	}
	for j, beta := range betas {
		b.ReportMetric(makespans[j], "makespan_beta_"+fmtFloat(beta)+"_s")
	}
}

// BenchmarkAblationSLAQ compares the SLAQ-like quality-driven baseline
// (periodic, no listeners, no hysteresis) against FlowCon on the ten-job
// workload.
func BenchmarkAblationSLAQ(b *testing.B) {
	var fc, slaq *experiment.Result
	for i := 0; i < b.N; i++ {
		fc = experiment.Run(tenJobSpec(experiment.FlowConPolicy(0.10, 20)))
		slaq = experiment.Run(tenJobSpec(experiment.SLAQPolicy(20)))
	}
	b.ReportMetric(fc.Makespan, "flowcon_makespan_s")
	b.ReportMetric(slaq.Makespan, "slaq_makespan_s")
}

// BenchmarkAblationContention removes the calibrated co-location overhead
// (ideal loss-free node): FlowCon's makespan edge disappears, confirming
// the paper's "reduced overlap" explanation.
func BenchmarkAblationContention(b *testing.B) {
	var fcIdeal, naIdeal *experiment.Result
	for i := 0; i < b.N; i++ {
		spec := tenJobSpec(experiment.FlowConPolicy(0.10, 20))
		spec.ContentionOverhead = -1
		fcIdeal = experiment.Run(spec)
		spec = tenJobSpec(experiment.NAPolicy(20))
		spec.ContentionOverhead = -1
		naIdeal = experiment.Run(spec)
	}
	b.ReportMetric((naIdeal.Makespan-fcIdeal.Makespan)/naIdeal.Makespan*100, "ideal_makespan_gain_%")
}

// BenchmarkAblationMultiWorker runs the ten-job workload across two
// FlowCon workers with least-loaded placement.
func BenchmarkAblationMultiWorker(b *testing.B) {
	var res *experiment.Result
	for i := 0; i < b.N; i++ {
		spec := tenJobSpec(experiment.FlowConPolicy(0.10, 20))
		spec.Workers = 2
		res = experiment.Run(spec)
	}
	b.ReportMetric(res.Makespan, "makespan_2workers_s")
}

// BenchmarkSchedulerOverhead measures the raw cost of one Algorithm 1
// step over a large container pool — the per-decision overhead the
// paper's back-off scheme amortizes.
func BenchmarkSchedulerOverhead(b *testing.B) {
	snaps := make([]flowcon.JobSnapshot, 100)
	for i := range snaps {
		snaps[i] = flowcon.JobSnapshot{
			ID:       string(rune('a'+i%26)) + string(rune('0'+i/26)),
			List:     flowcon.List(i % 3),
			G:        float64(i%17) * 0.01,
			GDefined: true,
		}
	}
	cfg := flowcon.Config{Alpha: 0.05, Beta: 2, InitialInterval: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flowcon.Step(snaps, cfg)
	}
}

// fmtFloat renders a float without importing fmt for a single call site.
func fmtFloat(f float64) string {
	switch f {
	case 1:
		return "1"
	case 2:
		return "2"
	case 4:
		return "4"
	case 8:
		return "8"
	default:
		return "x"
	}
}
