// Livemode runs FlowCon as live middleware inside one process: a
// wall-clock container runtime hosts time-scaled training jobs while the
// realtime driver polls, classifies, and re-balances them — the paper's
// deployment shape without the simulator (and without needing two
// terminals like cmd/flowcon-worker + cmd/flowcon-manager).
//
// The demo compresses the fixed schedule 20x (VAE at t=0, MNIST-PT at 2s,
// MNIST-TF at 4s; itval=1s) so it finishes in ~25 seconds of wall time.
//
//	go run ./examples/livemode
package main

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/dlmodel"
	"repro/internal/livedock"
	"repro/internal/realtime"
)

// scaled returns the profile with its epoch budget compressed by factor,
// so the live demo finishes quickly while keeping the same growth shape
// per second of wall time.
func scaled(p repro.Profile, factor float64) repro.Profile {
	p.TotalWork /= factor
	switch c := p.Curve.(type) {
	case repro.ExpCurve:
		c.K *= factor
		p.Curve = c
	case repro.LogisticCurve:
		c.S *= factor
		c.W0 /= factor
		p.Curve = c
	}
	return p
}

func main() {
	const speedup = 20.0
	node := livedock.NewNode(1.0)
	driver := realtime.NewDriver(repro.FlowConConfig{
		Alpha:           0.05,
		Beta:            2,
		InitialInterval: 20 / speedup, // 1s of wall time
	}, node)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go driver.Run(ctx, 100*time.Millisecond)

	launch := func(name string, p repro.Profile) {
		job := dlmodel.NewJob(name, scaled(p, speedup))
		if _, err := node.Run(name, job); err != nil {
			fmt.Println("launch:", err)
		}
		fmt.Printf("%6.1fs  launched %s\n", time.Since(start).Seconds(), name)
	}

	go func() {
		launch("vae", repro.VAEPyTorch())
		time.Sleep(2 * time.Second)
		launch("mnist-pt", repro.MNISTPyTorch())
		time.Sleep(2 * time.Second)
		launch("mnist-tf", repro.MNISTTensorFlow())
	}()

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("done.")
			return
		case <-ticker.C:
			node.Settle()
			snap := node.Snapshot()
			running := 0
			fmt.Printf("%6.1fs  ", time.Since(start).Seconds())
			for _, c := range snap {
				list := "--"
				if l, ok := driver.ListOf(c.ID); ok {
					list = l.String()
				}
				fmt.Printf("[%s %s %s lim=%.2f cpu=%.1fs] ", c.Name, c.State, list, c.Limit, c.CPUSec)
				if c.State == livedock.Running {
					running++
				}
			}
			fmt.Println()
			if len(snap) == 3 && running == 0 {
				fmt.Println("all jobs finished.")
				return
			}
		}
	}
}

var start = time.Now()
