// Faulttolerance runs the five-model random workload on a two-worker
// cluster, crashes one worker mid-run, and shows the manager rescheduling
// the lost jobs onto the survivor while FlowCon keeps re-balancing —
// an extension beyond the paper's single-node evaluation.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	subs := repro.RandomFive(repro.SeedRandomFive)

	clean := repro.Run(repro.Spec{
		Name:        "two-workers",
		NewPolicy:   repro.FlowConPolicy(0.03, 30),
		Submissions: subs,
		Workers:     2,
	})
	crashed := repro.Run(repro.Spec{
		Name:        "two-workers-crash",
		NewPolicy:   repro.FlowConPolicy(0.03, 30),
		Submissions: subs,
		Workers:     2,
		Failures:    map[int]float64{0: 150}, // worker-0 dies at t=150s
	})

	fmt.Println("Two FlowCon workers, five jobs; worker-0 crashes at t=150s.")
	fmt.Println()
	fmt.Printf("  %-8s %-22s %10s %10s %9s\n", "job", "model", "healthy", "crashed", "restarts")
	for _, j := range crashed.Jobs {
		h, _ := clean.Job(j.Name)
		fmt.Printf("  %-8s %-22s %10.1f %10.1f %9d\n",
			j.Name, j.Model, h.CompletionTime(), j.CompletionTime(), j.Restarts)
	}
	fmt.Println()
	fmt.Printf("  makespan: healthy %.1fs, with crash %.1fs (+%.1f%%)\n",
		clean.Makespan, crashed.Makespan,
		(crashed.Makespan-clean.Makespan)/clean.Makespan*100)
	fmt.Printf("  jobs rescheduled after the crash: %d\n", crashed.Requeued)
	fmt.Println()

	// Persist the traces for offline comparison.
	f, err := os.CreateTemp("", "flowcon-crash-*.json")
	if err == nil {
		defer f.Close()
		if err := crashed.Collector.Export().WriteJSON(f); err == nil {
			fmt.Printf("  full traces archived to %s\n", f.Name())
		}
	}
}
