// Randomsched reproduces the random-submission studies of Sections 5.4
// and 5.5: five models submitted at random times in [0s, 200s), then the
// 10-job and 15-job scalability workloads, with CPU-usage and
// growth-efficiency traces for the case-study jobs.
//
//	go run ./examples/randomsched
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	// Section 5.4: five jobs (LSTM-CFC, VAE, VAET, MNIST, GRU).
	fmt.Println("Section 5.4 — five jobs with random submission:")
	repro.ReportSweep(os.Stdout, repro.Fig9())
	fmt.Println()

	fcR, naR := repro.RandomPair()
	repro.ReportCPUTrace(os.Stdout, fcR, "Fig10: CPU usage of FlowCon (alpha=3%, itval=30, 5 jobs)")
	fmt.Println()
	repro.ReportCPUTrace(os.Stdout, naR, "Fig11: CPU usage of NA (5 jobs)")
	fmt.Println()

	// Section 5.5: scalability at 10 and 15 jobs.
	fmt.Println("Section 5.5 — scalability:")
	fc10, na10 := repro.TenJobPair()
	repro.ReportPair(os.Stdout, fc10, na10, "Fig12: ten jobs with random submission")
	fmt.Println()

	// The paper's case studies: Job-2 loses a little, Job-6 wins, and
	// their growth-efficiency traces explain why.
	repro.ReportGrowth(os.Stdout, fc10, na10, "Job-2", "Fig13: growth efficiency of Job-2")
	fmt.Println()
	repro.ReportGrowth(os.Stdout, fc10, na10, "Job-6", "Fig14: growth efficiency of Job-6")
	fmt.Println()

	fc15, na15 := repro.FifteenJobPair()
	repro.ReportPair(os.Stdout, fc15, na15, "Fig17: fifteen jobs with random submission")
}
