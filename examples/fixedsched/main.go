// Fixedsched reproduces the Section 5.3 parameter study: the fixed
// three-job schedule (VAE@0s, MNIST-PT@40s, MNIST-TF@80s) swept over the
// paper's α and itval grids, plus the Table 2 reduction summary.
//
//	go run ./examples/fixedsched
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	fmt.Println("Reproducing the Section 5.3 fixed-schedule study.")
	fmt.Println("Three jobs: VAE (Pytorch) @0s, MNIST (Pytorch) @40s, MNIST (Tensorflow) @80s.")
	fmt.Println()

	// Figures 3 and 4: sweep the executor interval at two thresholds.
	fig3 := repro.Fig3()
	repro.ReportSweep(os.Stdout, fig3)
	fmt.Println()
	fig4 := repro.Fig4()
	repro.ReportSweep(os.Stdout, fig4)
	fmt.Println()

	// Figures 5 and 6: sweep the threshold at two intervals.
	fig5 := repro.Fig5()
	repro.ReportSweep(os.Stdout, fig5)
	fmt.Println()
	repro.ReportSweep(os.Stdout, repro.Fig6())
	fmt.Println()

	// Table 2: MNIST (Tensorflow)'s completion-time reduction vs NA.
	rows := repro.Table2(fig4, fig5)
	fmt.Println("Table 2: completion-time reduction of MNIST (Tensorflow) vs NA")
	for _, r := range rows {
		fmt.Printf("  %-8s %6.1f%%\n", r.Setting.Label(), r.Reduction*100)
	}
	fmt.Println()

	// The paper's takeaway: a smaller interval lets FlowCon reassign
	// resources faster; larger α keeps jobs in the Completing list longer.
	best, bestRed := "", 0.0
	for _, r := range rows {
		if r.Reduction > bestRed {
			best, bestRed = r.Setting.Label(), r.Reduction
		}
	}
	fmt.Printf("Best setting for the tail job: %s (%.1f%% reduction).\n", best, bestRed*100)
}
