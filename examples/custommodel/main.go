// Custommodel shows how to put your own training job under FlowCon: define
// a Profile with a convergence curve and resource footprint, mix it with
// catalog models, and compare policies — including the static-equal and
// SLAQ-like baselines.
//
//	go run ./examples/custommodel
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	// A hypothetical transformer fine-tune: perplexity falls from 45 to 5
	// over a 180 cpu-second epoch budget, with an S-shaped warm-up, and
	// the data loader cannot keep more than 80% of the node busy.
	transformer := repro.Profile{
		Name:         "TinyTransformer",
		Framework:    repro.PyTorch,
		EvalFunction: "Perplexity",
		Direction:    repro.Decreasing,
		TotalWork:    180,
		Curve:        repro.LogisticCurve{Start: 45, Final: 5, W0: 30, S: 0.05},
		CPUDemand:    0.8,
		MemoryBytes:  2 << 30,
		NoiseAmp:     0.2,
	}
	transformer.Validate()

	subs := []repro.Submission{
		{Name: "transformer", Profile: transformer, At: 0},
		{Name: "vae", Profile: repro.VAEPyTorch(), At: 30},
		{Name: "mnist", Profile: repro.MNISTTensorFlow(), At: 120},
	}

	policies := map[string]func() *repro.Result{
		"FlowCon (3%,30)": func() *repro.Result {
			// Dense tier: the CPU-trace chart at the end re-plots raw samples.
			return repro.Run(repro.Spec{Name: "fc", NewPolicy: repro.FlowConPolicy(0.03, 30), Submissions: subs, TraceLevel: repro.TierDense})
		},
		"NA": func() *repro.Result {
			return repro.Run(repro.Spec{Name: "na", NewPolicy: repro.NAPolicy(30), Submissions: subs})
		},
		"StaticEqual": func() *repro.Result {
			return repro.Run(repro.Spec{Name: "static", NewPolicy: repro.StaticEqualPolicy(), Submissions: subs})
		},
		"SLAQ-like": func() *repro.Result {
			return repro.Run(repro.Spec{Name: "slaq", NewPolicy: repro.SLAQPolicy(30), Submissions: subs})
		},
	}

	fmt.Println("Custom model under four policies (completion times in seconds):")
	fmt.Printf("  %-16s %12s %8s %8s %10s\n", "policy", "transformer", "vae", "mnist", "makespan")
	for _, name := range []string{"FlowCon (3%,30)", "NA", "StaticEqual", "SLAQ-like"} {
		res := policies[name]()
		ct := res.CompletionTimes()
		fmt.Printf("  %-16s %12.1f %8.1f %8.1f %10.1f\n",
			name, ct["transformer"], ct["vae"], ct["mnist"], res.Makespan)
	}

	fmt.Println()
	fc := policies["FlowCon (3%,30)"]()
	repro.ReportCPUTrace(os.Stdout, fc, "CPU usage under FlowCon")
}
