// Quickstart: run the paper's fixed three-job schedule under FlowCon and
// under plain Docker fair sharing (NA), and compare completion times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	subs := repro.FixedSchedule()

	fc := repro.Run(repro.Spec{
		Name:        "quickstart-flowcon",
		NewPolicy:   repro.FlowConPolicy(0.05, 20), // α=5%, itval=20s
		Submissions: subs,
		// The CPU-trace chart below re-plots raw samples, which only the
		// dense tier retains (the default keeps summaries only).
		TraceLevel: repro.TierDense,
	})
	na := repro.Run(repro.Spec{
		Name:        "quickstart-na",
		NewPolicy:   repro.NAPolicy(20),
		Submissions: subs,
	})

	repro.ReportPair(os.Stdout, fc, na, "FlowCon vs NA on the fixed schedule (Section 5.3)")

	fmt.Println()
	fmt.Println("How it happened — CPU shares over time under FlowCon:")
	repro.ReportCPUTrace(os.Stdout, fc, "CPU usage, FlowCon (alpha=5%, itval=20)")

	fmt.Println()
	fmt.Printf("FlowCon ran Algorithm 1 %d times and issued %d docker-update calls.\n",
		fc.AlgorithmRuns, fc.LimitUpdates)
}
